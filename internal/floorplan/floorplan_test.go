package floorplan

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/device"
)

// TestFindWindowPaperPRRs reproduces the window placements behind Table V:
// FIR on the LX110T needs {2xCLB+1xDSP} (found), MIPS {17xCLB+1xDSP+2xBRAM}
// at H=1, and the FIR H=1..4 needs fail.
func TestFindWindowPaperPRRs(t *testing.T) {
	f := &device.XC5VLX110T.Fabric
	for _, clbs := range []int{9, 5, 3} {
		if _, ok := FindWindow(f, 1, Need{CLB: clbs, DSP: 1}); ok {
			t.Errorf("{%dxCLB+1xDSP} should be infeasible on LX110T", clbs)
		}
	}
	reg, ok := FindWindow(f, 5, Need{CLB: 2, DSP: 1})
	if !ok {
		t.Fatal("FIR window {2xCLB+1xDSP} not found at H=5")
	}
	if reg.Row != 1 {
		t.Errorf("Fig. 1 search must start at the fabric bottom; found row %d", reg.Row)
	}
	if reg.H != 5 || reg.W != 3 {
		t.Errorf("FIR region = %v, want 5x3", reg)
	}
	if _, ok := FindWindow(f, 1, Need{CLB: 17, DSP: 1, BRAM: 2}); !ok {
		t.Error("MIPS window {17xCLB+1xDSP+2xBRAM} not found at H=1")
	}
	if _, ok := FindWindow(f, 1, Need{CLB: 3}); !ok {
		t.Error("SDRAM window {3xCLB} not found at H=1")
	}
}

// TestFindWindowLeftmost: the search returns the leftmost bottom-most match.
func TestFindWindowLeftmost(t *testing.T) {
	f := &device.Fabric{Rows: 2, Columns: device.MustParseLayout("I CC B CC B CC I")}
	reg, ok := FindWindow(f, 1, Need{CLB: 2})
	if !ok || reg.Col != 2 || reg.Row != 1 {
		t.Errorf("leftmost {2xCLB} = %v, %v; want row 1 col 2", reg, ok)
	}
}

// TestFindWindowForbiddenKinds: windows spanning IOB or CLK columns never
// match, even when the composition would otherwise be completable.
func TestFindWindowForbiddenKinds(t *testing.T) {
	f := &device.Fabric{Rows: 1, Columns: device.MustParseLayout("C I C K C")}
	if _, ok := FindWindow(f, 1, Need{CLB: 2}); ok {
		t.Error("window crossing IOB/CLK columns should not match")
	}
	if _, ok := FindWindow(f, 1, Need{CLB: 1}); !ok {
		t.Error("single CLB column should match")
	}
}

// TestFindWindowHoles: a hard-macro hole blocks only the rows it occupies.
func TestFindWindowHoles(t *testing.T) {
	f := &device.Fabric{
		Rows:    3,
		Columns: device.MustParseLayout("CCC"),
		Holes:   map[device.Coord]string{{Row: 1, Col: 2}: "PCIE"},
	}
	reg, ok := FindWindow(f, 1, Need{CLB: 3})
	if !ok {
		t.Fatal("window not found above the hole")
	}
	if reg.Row != 2 {
		t.Errorf("window found at row %d, want 2 (row 1 holed)", reg.Row)
	}
	if _, ok := FindWindow(f, 3, Need{CLB: 3}); ok {
		t.Error("full-height window should be blocked by the hole")
	}
}

// TestFindWindowAvoid: placed regions exclude their tiles.
func TestFindWindowAvoid(t *testing.T) {
	f := &device.Fabric{Rows: 2, Columns: device.MustParseLayout("CCCC")}
	first, ok := FindWindow(f, 1, Need{CLB: 4})
	if !ok || first.Row != 1 {
		t.Fatalf("first region = %v, %v", first, ok)
	}
	second, ok := FindWindow(f, 1, Need{CLB: 4}, first)
	if !ok || second.Row != 2 {
		t.Fatalf("second region = %v, %v; want row 2", second, ok)
	}
	if _, ok := FindWindow(f, 1, Need{CLB: 4}, first, second); ok {
		t.Error("third region should not fit")
	}
}

// TestFindWindowTrace: the trace records failed probes before the success,
// with reasons.
func TestFindWindowTrace(t *testing.T) {
	f := &device.Fabric{Rows: 1, Columns: device.MustParseLayout("I C C D B")}
	reg, ok, steps := FindWindowTrace(f, 1, Need{CLB: 1, DSP: 1})
	if !ok {
		t.Fatal("window not found")
	}
	if reg.Col != 3 {
		t.Errorf("window at col %d, want 3", reg.Col)
	}
	if len(steps) < 2 {
		t.Fatalf("trace has %d steps, want >= 2", len(steps))
	}
	if !steps[len(steps)-1].Found {
		t.Error("last trace step should be the success")
	}
	sawReason := false
	for _, s := range steps[:len(steps)-1] {
		if s.Found {
			t.Error("non-final step marked found")
		}
		if s.Reason != "" {
			sawReason = true
		}
	}
	if !sawReason {
		t.Error("no failure reasons recorded")
	}
}

// TestRegionOverlap property: overlap is symmetric and self-overlap holds.
func TestRegionOverlap(t *testing.T) {
	prop := func(r1, c1, h1, w1, r2, c2, h2, w2 uint8) bool {
		a := Region{Row: int(r1%10) + 1, Col: int(c1%10) + 1, H: int(h1%4) + 1, W: int(w1%4) + 1}
		b := Region{Row: int(r2%10) + 1, Col: int(c2%10) + 1, H: int(h2%4) + 1, W: int(w2%4) + 1}
		if a.Overlaps(b) != b.Overlaps(a) {
			return false
		}
		return a.Overlaps(a) && b.Overlaps(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRegionOverlapCases(t *testing.T) {
	a := Region{Row: 1, Col: 1, H: 2, W: 2}
	if a.Overlaps(Region{Row: 3, Col: 1, H: 1, W: 2}) {
		t.Error("vertically adjacent regions reported overlapping")
	}
	if a.Overlaps(Region{Row: 1, Col: 3, H: 2, W: 1}) {
		t.Error("horizontally adjacent regions reported overlapping")
	}
	if !a.Overlaps(Region{Row: 2, Col: 2, H: 2, W: 2}) {
		t.Error("corner-sharing overlap missed")
	}
}

// TestPlaceAll places the paper's three PRRs together on the LX110T.
func TestPlaceAll(t *testing.T) {
	p := NewPlacer(&device.XC5VLX110T.Fabric)
	reqs := []Request{
		{Name: "fir", H: 5, Need: Need{CLB: 2, DSP: 1}},
		{Name: "mips", H: 1, Need: Need{CLB: 17, DSP: 1, BRAM: 2}},
		{Name: "sdram", H: 1, Need: Need{CLB: 3}},
	}
	if err := ValidateRequests(reqs); err != nil {
		t.Fatal(err)
	}
	plan, err := p.PlaceAll(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Placements) != 3 {
		t.Fatalf("placed %d regions, want 3", len(plan.Placements))
	}
	for i, pl := range plan.Placements {
		if pl.Name != reqs[i].Name {
			t.Errorf("placement %d is %q, want request order preserved (%q)", i, pl.Name, reqs[i].Name)
		}
		for j := i + 1; j < len(plan.Placements); j++ {
			if pl.Region.Overlaps(plan.Placements[j].Region) {
				t.Errorf("placements %q and %q overlap: %v vs %v",
					pl.Name, plan.Placements[j].Name, pl.Region, plan.Placements[j].Region)
			}
		}
	}
}

// TestPlaceAllConflict: two PRRs that both need the single DSP column cannot
// coexist on the LX110T.
func TestPlaceAllConflict(t *testing.T) {
	p := NewPlacer(&device.XC5VLX110T.Fabric)
	reqs := []Request{
		{Name: "a", H: 8, Need: Need{CLB: 2, DSP: 1}},
		{Name: "b", H: 1, Need: Need{CLB: 2, DSP: 1}},
	}
	if _, err := p.PlaceAll(reqs); err == nil {
		t.Error("placements competing for the single DSP column should fail")
	} else if !strings.Contains(err.Error(), "no feasible region") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestPlaceAllReserved: reserved (static-region) tiles are excluded.
func TestPlaceAllReserved(t *testing.T) {
	f := &device.Fabric{Rows: 2, Columns: device.MustParseLayout("CCCC")}
	p := NewPlacer(f, Region{Row: 1, Col: 1, H: 1, W: 4})
	plan, err := p.PlaceAll([]Request{{Name: "x", H: 1, Need: Need{CLB: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Placements[0].Region.Row != 2 {
		t.Errorf("placement should avoid the reserved row: %v", plan.Placements[0].Region)
	}
}

func TestValidateRequests(t *testing.T) {
	if err := ValidateRequests([]Request{{Name: "", H: 1, Need: Need{CLB: 1}}}); err == nil {
		t.Error("empty name accepted")
	}
	if err := ValidateRequests([]Request{
		{Name: "a", H: 1, Need: Need{CLB: 1}},
		{Name: "a", H: 1, Need: Need{CLB: 1}},
	}); err == nil {
		t.Error("duplicate names accepted")
	}
	if err := ValidateRequests([]Request{{Name: "a", H: 1}}); err == nil {
		t.Error("empty need accepted")
	}
	if err := ValidateRequests([]Request{{Name: "a", H: 0, Need: Need{CLB: 1}}}); err == nil {
		t.Error("zero height accepted")
	}
}

// TestFindLShape: on a fabric where 25 CLB column-rows are needed, a 5x5
// rectangle would waste nothing — but for 21 tiles an L (base 3 rows x 5
// cols + ext 2 rows x 3 cols = 21) beats the 25-tile rectangle.
func TestFindLShape(t *testing.T) {
	f := &device.Fabric{Rows: 5, Columns: device.MustParseLayout("CCCCCCCC")}
	l, ok := FindLShape(f, 5, Need{CLB: 21})
	if !ok {
		t.Fatal("no L shape found")
	}
	if l.Tiles() != 21 {
		t.Errorf("L shape uses %d tiles, want exactly 21", l.Tiles())
	}
	if l.Ext.W > l.Base.W {
		t.Errorf("extension wider than base: %v over %v", l.Ext, l.Base)
	}
	if l.Ext.H > 0 && (l.Ext.Col != l.Base.Col || l.Ext.Row != l.Base.Row+l.Base.H) {
		t.Errorf("extension not stacked on base: %v over %v", l.Ext, l.Base)
	}
}

func TestNeedString(t *testing.T) {
	n := Need{CLB: 17, DSP: 1, BRAM: 2}
	if n.Width() != 20 {
		t.Errorf("width = %d, want 20", n.Width())
	}
	if !strings.Contains(n.String(), "17xCLB") {
		t.Errorf("need string = %q", n.String())
	}
}
