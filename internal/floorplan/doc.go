// Package floorplan implements the geometric half of the paper's PRR
// size/organization cost model: the Fig. 1 search for a physical region of H
// rows and W contiguous columns whose column composition matches the PRM's
// requirements (W_CLB CLB columns, W_DSP DSP columns, W_BRAM BRAM columns, in
// any order, with no IOB or CLK columns and no hard-macro overlap).
//
// Beyond the paper's rectangle search it provides multi-PRR placement (the
// hardware-multitasking scenario needs several disjoint PRRs on one device)
// and the non-rectangular L-shaped regions the paper's §IV discussion names
// as a way to raise resource utilization.
package floorplan
