package floorplan

import (
	"fmt"

	"repro/internal/device"
)

// Placer places PRRs on one fabric. Reserved regions (typically the static
// region's floorplan) are never overlapped.
type Placer struct {
	Fabric   *device.Fabric
	Reserved []Region
}

// NewPlacer returns a placer for the fabric with optional reserved regions.
func NewPlacer(f *device.Fabric, reserved ...Region) *Placer {
	return &Placer{Fabric: f, Reserved: reserved}
}

// ValidateRequests checks request names are unique and needs non-empty, the
// preconditions PlaceAll assumes.
func ValidateRequests(reqs []Request) error {
	seen := make(map[string]bool, len(reqs))
	for _, r := range reqs {
		if r.Name == "" {
			return fmt.Errorf("floorplan: request with empty name")
		}
		if seen[r.Name] {
			return fmt.Errorf("floorplan: duplicate request name %q", r.Name)
		}
		seen[r.Name] = true
		if r.Need.Width() == 0 {
			return fmt.Errorf("floorplan: request %q needs no columns", r.Name)
		}
		if r.H < 1 {
			return fmt.Errorf("floorplan: request %q has H=%d", r.Name, r.H)
		}
	}
	return nil
}
