package floorplan

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/device"
	"repro/internal/obs"
)

// refFindWindow is the pre-index scanning search: classify every start
// column on every probe, exactly as findWindow did before the WindowIndex.
// It is the oracle the indexed path must match bit for bit.
func refFindWindow(f *device.Fabric, h int, need Need, avoid []Region) (Region, bool) {
	w := need.Width()
	if w == 0 || h < 1 {
		return Region{}, false
	}
	maxCol := f.NumColumns() - w + 1
	if maxCol < 1 {
		return Region{}, false
	}
	want := need.Composition()
	for row := 1; row+h-1 <= f.Rows; row++ {
		for col := 1; col <= maxCol; col++ {
			comp := f.CompositionOf(col, w)
			if comp.HasForbidden() || comp != want {
				continue
			}
			if _, holed := f.HoleIn(row, col, h, w); holed {
				continue
			}
			cand := Region{Row: row, Col: col, H: h, W: w}
			if overlapAny(cand, avoid) != nil {
				continue
			}
			return cand, true
		}
	}
	return Region{}, false
}

// randomFabric draws a fabric with a CLB-heavy random column mix, a few
// forbidden columns, and a few hard-macro holes.
func randomFabric(rng *rand.Rand) *device.Fabric {
	kinds := []device.ColumnKind{
		device.KindCLB, device.KindCLB, device.KindCLB, device.KindCLB,
		device.KindDSP, device.KindBRAM, device.KindIOB, device.KindCLK,
	}
	cols := make([]device.ColumnKind, 1+rng.Intn(40))
	for i := range cols {
		cols[i] = kinds[rng.Intn(len(kinds))]
	}
	f := &device.Fabric{Rows: 1 + rng.Intn(8), Columns: cols}
	for n := rng.Intn(4); n > 0; n-- {
		if f.Holes == nil {
			f.Holes = make(map[device.Coord]string)
		}
		c := device.Coord{Row: 1 + rng.Intn(f.Rows), Col: 1 + rng.Intn(len(cols))}
		f.Holes[c] = "macro"
	}
	return f
}

// randomNeed draws a need; about a third are impossible mixes.
func randomNeed(rng *rand.Rand) Need {
	return Need{CLB: rng.Intn(8), DSP: rng.Intn(3), BRAM: rng.Intn(3)}
}

// randomAvoid draws up to three blocked regions inside the fabric.
func randomAvoid(rng *rand.Rand, f *device.Fabric) []Region {
	var avoid []Region
	for n := rng.Intn(4); n > 0; n-- {
		row, col := 1+rng.Intn(f.Rows), 1+rng.Intn(f.NumColumns())
		avoid = append(avoid, Region{
			Row: row, Col: col,
			H: 1 + rng.Intn(f.Rows-row+1), W: 1 + rng.Intn(f.NumColumns()-col+1),
		})
	}
	return avoid
}

// TestFindWindowMatchesScanningReference drives the indexed FindWindow and
// the scanning oracle across random fabrics, needs, heights and avoid sets:
// found/not-found and the exact region must agree everywhere. Repeated
// lookups against the same fabric also exercise the memoized path.
func TestFindWindowMatchesScanningReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		f := randomFabric(rng)
		// Several needs per fabric: later ones hit the memoized candidates.
		for j := 0; j < 6; j++ {
			need := randomNeed(rng)
			h := 1 + rng.Intn(f.Rows+2) // sometimes taller than the fabric
			avoid := randomAvoid(rng, f)
			wantReg, wantOK := refFindWindow(f, h, need, avoid)
			gotReg, gotOK := FindWindow(f, h, need, avoid...)
			if gotOK != wantOK || gotReg != wantReg {
				t.Fatalf("fabric %q rows=%d h=%d need=%v avoid=%v:\nindexed = %v,%v\nscanning = %v,%v",
					f.Layout(), f.Rows, h, need, avoid, gotReg, gotOK, wantReg, wantOK)
			}
			// The traced variant must agree on the outcome too.
			tReg, tOK, _ := FindWindowTrace(f, h, need, avoid...)
			if tOK != wantOK || tReg != wantReg {
				t.Fatalf("fabric %q h=%d need=%v: trace = %v,%v, want %v,%v",
					f.Layout(), h, need, tReg, tOK, wantReg, wantOK)
			}
		}
	}
}

// TestFindWindowConcurrentLookups hammers one fabric's index from many
// goroutines with overlapping needs; run under -race this checks the lazily
// built candidate sets publish safely, and every result still matches the
// oracle.
func TestFindWindowConcurrentLookups(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := randomFabric(rng)
	type query struct {
		need  Need
		h     int
		avoid []Region
	}
	queries := make([]query, 64)
	for i := range queries {
		queries[i] = query{need: randomNeed(rng), h: 1 + rng.Intn(f.Rows), avoid: randomAvoid(rng, f)}
	}
	var wg sync.WaitGroup
	errs := make(chan string, len(queries)*4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, q := range queries {
				wantReg, wantOK := refFindWindow(f, q.h, q.need, q.avoid)
				gotReg, gotOK := FindWindow(f, q.h, q.need, q.avoid...)
				if gotOK != wantOK || gotReg != wantReg {
					errs <- q.need.String()
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for need := range errs {
		t.Errorf("concurrent lookup diverged from oracle for need %s", need)
	}
}

// TestFindWindowEmptyNeedSkipsRows: a need no start column can ever satisfy
// must answer without probing a single window (satellite: the empty
// candidate list returns before the row sweep).
func TestFindWindowEmptyNeedSkipsRows(t *testing.T) {
	f := &device.Fabric{Rows: 512, Columns: device.MustParseLayout("C*20 D C*20")}
	before := metScanned.Value()
	if _, ok := FindWindow(f, 1, Need{DSP: 2}); ok {
		t.Fatal("two-DSP need cannot exist on a one-DSP-column fabric")
	}
	if d := metScanned.Value() - before; d != 0 {
		t.Errorf("empty-candidate search probed %d windows, want 0", d)
	}
}

// TestIndexLookupMetrics checks the floorplan_index_* counters: a fresh need
// counts one build, a repeat counts one hit, and an impossible need counts
// toward the empty-needs total on every lookup.
func TestIndexLookupMetrics(t *testing.T) {
	f := &device.Fabric{Rows: 4, Columns: device.MustParseLayout("C*6 B C*6")}
	builds0, hits0, empty0 := metIndexBuilds.Value(), metIndexHits.Value(), metIndexEmpty.Value()

	if _, ok := FindWindow(f, 2, Need{CLB: 3}); !ok {
		t.Fatal("{3xCLB} must fit")
	}
	if d := metIndexBuilds.Value() - builds0; d != 1 {
		t.Errorf("first lookup: builds delta = %d, want 1", d)
	}
	if d := metIndexHits.Value() - hits0; d != 0 {
		t.Errorf("first lookup: hits delta = %d, want 0", d)
	}

	if _, ok := FindWindow(f, 3, Need{CLB: 3}); !ok {
		t.Fatal("{3xCLB} must fit at H=3 too")
	}
	if d := metIndexBuilds.Value() - builds0; d != 1 {
		t.Errorf("repeat lookup: builds delta = %d, want 1 (memoized)", d)
	}
	if d := metIndexHits.Value() - hits0; d != 1 {
		t.Errorf("repeat lookup: hits delta = %d, want 1", d)
	}

	for i := 0; i < 2; i++ { // impossible need: build then hit, empty both times
		if _, ok := FindWindow(f, 1, Need{DSP: 1}); ok {
			t.Fatal("DSP need cannot fit on a DSP-free fabric")
		}
	}
	if d := metIndexEmpty.Value() - empty0; d != 2 {
		t.Errorf("empty-needs delta = %d, want 2", d)
	}
	if d := metIndexBuilds.Value() - builds0; d != 2 {
		t.Errorf("after impossible need: builds delta = %d, want 2", d)
	}
	if d := metIndexHits.Value() - hits0; d != 2 {
		t.Errorf("after impossible need: hits delta = %d, want 2", d)
	}

	// The counters must be registered on the default registry under their
	// exported names.
	var sb strings.Builder
	if err := obs.Default().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"floorplan_index_builds_total",
		"floorplan_index_lookup_hits_total",
		"floorplan_index_empty_needs_total",
	} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("default registry does not export %s", name)
		}
	}
}

// TestFindWindowTraceCap: on a fabric whose failed search would narrate far
// more than TraceStepCap probes, the trace stops at the cap plus one marker
// step whose Reason is TraceTruncated.
func TestFindWindowTraceCap(t *testing.T) {
	f := &device.Fabric{Rows: 300, Columns: device.MustParseLayout("C*60")}
	blockAll := Region{Row: 1, Col: 1, H: 300, W: 60}
	_, ok, steps := FindWindowTrace(f, 2, Need{CLB: 2}, blockAll)
	if ok {
		t.Fatal("fully blocked fabric must not place a window")
	}
	if len(steps) != TraceStepCap+1 {
		t.Fatalf("trace has %d steps, want cap %d + 1 marker", len(steps), TraceStepCap)
	}
	if last := steps[len(steps)-1]; last.Reason != TraceTruncated {
		t.Errorf("last step reason = %q, want the truncation marker", last.Reason)
	}
	for _, s := range steps[:len(steps)-1] {
		if s.Reason == TraceTruncated {
			t.Fatal("truncation marker appears before the end")
		}
	}
}

// TestFindWindowTraceCapKeepsSuccess: when the match lands beyond the cap,
// the trace is truncated but still ends with the successful step.
func TestFindWindowTraceCapKeepsSuccess(t *testing.T) {
	f := &device.Fabric{Rows: 300, Columns: device.MustParseLayout("C*60")}
	blockLow := Region{Row: 1, Col: 1, H: 298, W: 60} // rows 1-298 blocked
	reg, ok, steps := FindWindowTrace(f, 2, Need{CLB: 2}, blockLow)
	if !ok || reg.Row != 299 {
		t.Fatalf("window = %v, %v; want a match at row 299", reg, ok)
	}
	if len(steps) != TraceStepCap+2 {
		t.Fatalf("trace has %d steps, want cap + marker + success", len(steps))
	}
	last := steps[len(steps)-1]
	if !last.Found || last.Row != 299 {
		t.Errorf("final step = %+v, want the successful probe at row 299", last)
	}
	if steps[len(steps)-2].Reason != TraceTruncated {
		t.Errorf("penultimate step reason = %q, want the truncation marker", steps[len(steps)-2].Reason)
	}
}
