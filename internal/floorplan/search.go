package floorplan

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/obs"
)

// Window-search observability: the scanned/accepted pair shows how much of
// the fabric the Fig. 1 search walks before a window fits, and the
// per-device histograms expose how probe effort differs across column
// layouts (the paper's portability argument, §IV.C).
var (
	metSearches = obs.Default().Counter("floorplan_window_searches_total",
		"FindWindow invocations")
	metScanned = obs.Default().Counter("floorplan_windows_scanned_total",
		"candidate (row, column) windows probed across all searches")
	metAccepted = obs.Default().Counter("floorplan_windows_accepted_total",
		"searches that found a matching window")
)

// Window-index observability: builds versus hits show how quickly the
// per-fabric candidate memo converges (a steady state is all hits), and the
// empty-needs counter exposes searches answered without touching a single
// row — the needs the fabric can structurally never place.
var (
	metIndexBuilds = obs.Default().Counter("floorplan_index_builds_total",
		"candidate-column sets built and memoized in a fabric's WindowIndex")
	metIndexHits = obs.Default().Counter("floorplan_index_lookup_hits_total",
		"window-candidate lookups answered from a fabric's WindowIndex memo")
	metIndexEmpty = obs.Default().Counter("floorplan_index_empty_needs_total",
		"searches whose need has no candidate column anywhere on the fabric")
)

// recordLookup folds one index lookup into the registry; the per-device
// candidate-count histogram costs a registry lookup, so it is gated on
// obs.Active and only sampled when the entry was freshly built.
func recordLookup(f *device.Fabric, cands []int, built bool) {
	if !built {
		metIndexHits.Inc()
		return
	}
	metIndexBuilds.Inc()
	if obs.Active() {
		obs.Default().Histogram("floorplan_index_candidates",
			"candidate start columns per freshly indexed need", obs.CountBuckets,
			obs.L("device", deviceLabel(f))).Observe(float64(len(cands)))
	}
}

// deviceLabel names the fabric for per-device metric series.
func deviceLabel(f *device.Fabric) string {
	if f.Name == "" {
		return "custom"
	}
	return f.Name
}

// recordSearch folds one search's effort into the registry. The counters are
// always on (three atomic adds per search); the per-device histogram costs a
// registry lookup, so it is gated on obs.Active.
func recordSearch(f *device.Fabric, probes int, found bool) {
	metSearches.Inc()
	metScanned.Add(int64(probes))
	if found {
		metAccepted.Inc()
	}
	if obs.Active() {
		obs.Default().Histogram("floorplan_window_probes",
			"candidate windows probed per search", obs.CountBuckets,
			obs.L("device", deviceLabel(f))).Observe(float64(probes))
	}
}

// Need is a column requirement: how many columns of each PRR-allowed kind the
// region must contain (the paper's W_CLB, W_DSP, W_BRAM for a candidate H).
type Need struct {
	CLB  int
	DSP  int
	BRAM int
}

// Width returns the total column count W = W_CLB + W_DSP + W_BRAM (Eq. (6)).
func (n Need) Width() int { return n.CLB + n.DSP + n.BRAM }

// Composition converts the need into a fabric composition for window
// matching.
func (n Need) Composition() device.Composition {
	var c device.Composition
	c.Add(device.KindCLB, n.CLB)
	c.Add(device.KindDSP, n.DSP)
	c.Add(device.KindBRAM, n.BRAM)
	return c
}

// String renders the need as "{17xCLB+1xDSP+2xBRAM}".
func (n Need) String() string { return "{" + n.Composition().String() + "}" }

// Region is a placed rectangular PRR: rows [Row, Row+H) and columns
// [Col, Col+W) of the fabric, 1-based from the bottom-left.
type Region struct {
	Row, Col int
	H, W     int
}

// Overlaps reports whether two regions share any tile.
func (r Region) Overlaps(o Region) bool {
	return r.Row < o.Row+o.H && o.Row < r.Row+r.H &&
		r.Col < o.Col+o.W && o.Col < r.Col+r.W
}

// String renders the region as "rows 1-5, cols 34-36 (5x3)".
func (r Region) String() string {
	return fmt.Sprintf("rows %d-%d, cols %d-%d (%dx%d)",
		r.Row, r.Row+r.H-1, r.Col, r.Col+r.W-1, r.H, r.W)
}

// Step records one probe of the Fig. 1 search, for trace output.
type Step struct {
	Row, Col int
	Found    bool
	Reason   string // why the probe failed, empty when Found
}

// TraceStepCap bounds the steps FindWindowTrace accumulates. An unbounded
// trace is O(rows·cols) memory on large fabrics (every classification failure
// is replayed per row); once the cap is reached a single marker step with
// Reason TraceTruncated is appended, further failures are dropped, and the
// final successful step (if any) is still recorded.
const TraceStepCap = 4096

// TraceTruncated is the Reason of the marker step appended when a trace hits
// TraceStepCap.
const TraceTruncated = "trace truncated: step cap reached"

// FindWindow runs the paper's Fig. 1 inner search: scan the fabric bottom-up
// (row 1 first) and left-to-right for a window of H rows and need.Width()
// contiguous columns whose composition exactly matches the need, containing
// no IOB or CLK columns and overlapping no hard-macro hole. avoid lists
// regions the window must not overlap (already-placed PRRs or the static
// region). It returns the first matching region.
func FindWindow(f *device.Fabric, h int, need Need, avoid ...Region) (Region, bool) {
	r, ok, _ := findWindow(f, h, need, false, avoid)
	return r, ok
}

// FindWindowTrace is FindWindow with a per-probe trace, used to reproduce
// the paper's Fig. 1 flow as a narrated search. The trace is bounded by
// TraceStepCap; a truncated trace ends its failure steps with a marker whose
// Reason is TraceTruncated (the final successful step is always recorded).
func FindWindowTrace(f *device.Fabric, h int, need Need, avoid ...Region) (Region, bool, []Step) {
	return findWindow(f, h, need, true, avoid)
}

func findWindow(f *device.Fabric, h int, need Need, trace bool, avoid []Region) (reg Region, found bool, steps []Step) {
	probes := 0
	defer func() { recordSearch(f, probes, found) }()
	w := need.Width()
	if w == 0 || h < 1 {
		return Region{}, false, nil
	}
	maxCol := f.NumColumns() - w + 1
	if maxCol < 1 {
		return Region{}, false, nil
	}
	wantComp := need.Composition()
	if trace {
		return findWindowTraced(f, h, w, wantComp, maxCol, avoid, &probes)
	}

	// A window's composition depends only on (col, w), never on the row, so
	// the candidate columns come from the fabric's memoized WindowIndex —
	// a map read after the first search for this need — leaving only the
	// hole/avoid checks in the row loop.
	cands, built := f.WindowIndex().Candidates(wantComp)
	recordLookup(f, cands, built)
	if len(cands) == 0 {
		// No start column anywhere on the fabric matches the mix: the
		// search can never succeed for any row, so don't sweep any.
		metIndexEmpty.Inc()
		return Region{}, false, nil
	}

	for row := 1; row+h-1 <= f.Rows; row++ {
		for _, col := range cands {
			probes++
			if cand, ok := probeFast(f, row, col, h, w, avoid); ok {
				return cand, true, nil
			}
		}
	}
	return Region{}, false, nil
}

// probeFast runs the row-dependent checks for one candidate window without
// rendering failure reasons — the hot path pays no fmt work.
func probeFast(f *device.Fabric, row, col, h, w int, avoid []Region) (Region, bool) {
	cand := Region{Row: row, Col: col, H: h, W: w}
	if _, holed := f.HoleIn(row, col, h, w); holed {
		return Region{}, false
	}
	if overlapAny(cand, avoid) != nil {
		return Region{}, false
	}
	return cand, true
}

// findWindowTraced is the narrated variant: it classifies the columns per
// call (the reasons need the rejected compositions) and records every step up
// to TraceStepCap, walking exactly the rows and columns the scanning search
// would — the narration's step and probe counts are part of the Fig. 1
// reproduction output.
func findWindowTraced(f *device.Fabric, h, w int, wantComp device.Composition, maxCol int, avoid []Region, probes *int) (Region, bool, []Step) {
	var steps []Step
	truncated := false
	addStep := func(s Step) {
		switch {
		case s.Found || len(steps) < TraceStepCap:
			steps = append(steps, s)
		case !truncated:
			truncated = true
			steps = append(steps, Step{Row: s.Row, Col: s.Col, Reason: TraceTruncated})
		}
	}

	pre := f.PrefixSums()
	cands := make([]int, 0, maxCol)
	colReason := make([]string, maxCol+1)
	for col := 1; col <= maxCol; col++ {
		comp := pre.CompositionOf(col, w)
		switch {
		case comp.HasForbidden():
			colReason[col] = "window contains IOB/CLK column"
		case comp != wantComp:
			colReason[col] = fmt.Sprintf("composition %v != %v", comp, wantComp)
		default:
			cands = append(cands, col)
		}
	}

	for row := 1; row+h-1 <= f.Rows; row++ {
		for col := 1; col <= maxCol; col++ {
			if colReason[col] != "" {
				addStep(Step{Row: row, Col: col, Reason: colReason[col]})
				continue
			}
			*probes++
			cand, ok, step := probe(f, row, col, h, w, avoid)
			addStep(step)
			if ok {
				return cand, true, steps
			}
		}
	}
	return Region{}, false, steps
}

// probe runs the row-dependent checks (hard-macro holes, already-placed
// regions) for one candidate window whose composition already matched.
func probe(f *device.Fabric, row, col, h, w int, avoid []Region) (Region, bool, Step) {
	cand := Region{Row: row, Col: col, H: h, W: w}
	if name, holed := f.HoleIn(row, col, h, w); holed {
		return Region{}, false, Step{Row: row, Col: col, Reason: "overlaps hard macro " + name}
	}
	if blocked := overlapAny(cand, avoid); blocked != nil {
		return Region{}, false, Step{Row: row, Col: col, Reason: "overlaps placed region " + blocked.String()}
	}
	return cand, true, Step{Row: row, Col: col, Found: true}
}

func overlapAny(r Region, avoid []Region) *Region {
	for i := range avoid {
		if r.Overlaps(avoid[i]) {
			return &avoid[i]
		}
	}
	return nil
}
