package floorplan

import (
	"testing"

	"repro/internal/device"
)

// BenchmarkFindWindowHit measures the steady-state indexed search on the
// LX110T for the paper's MIPS need: candidates come from the memoized index,
// so the loop body is the hole/avoid probes only. Allocations are reported —
// the hit path is expected to allocate nothing.
func BenchmarkFindWindowHit(b *testing.B) {
	f := &device.XC5VLX110T.Fabric
	need := Need{CLB: 17, DSP: 1, BRAM: 2}
	if _, ok := FindWindow(f, 1, need); !ok {
		b.Fatal("MIPS window must exist")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := FindWindow(f, 1, need); !ok {
			b.Fatal("window vanished")
		}
	}
}

// BenchmarkFindWindowAvoid adds placed regions, the DSE group-pricing shape:
// the bottom rows are blocked so several rows are probed before the match.
func BenchmarkFindWindowAvoid(b *testing.B) {
	f := &device.XC5VLX110T.Fabric
	need := Need{CLB: 2, DSP: 1}
	avoid := []Region{{Row: 1, Col: 1, H: 2, W: f.NumColumns()}}
	if _, ok := FindWindow(f, 5, need, avoid...); !ok {
		b.Fatal("FIR window must exist above the blocked rows")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := FindWindow(f, 5, need, avoid...); !ok {
			b.Fatal("window vanished")
		}
	}
}

// BenchmarkFindWindowEmpty measures the impossible-need fast path: the index
// answers from the run census without sweeping any row.
func BenchmarkFindWindowEmpty(b *testing.B) {
	f := &device.XC5VLX110T.Fabric
	need := Need{DSP: 3} // the LX110T has a single DSP column
	if _, ok := FindWindow(f, 1, need); ok {
		b.Fatal("three-DSP need must be impossible")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := FindWindow(f, 1, need); ok {
			b.Fatal("impossible need matched")
		}
	}
}
