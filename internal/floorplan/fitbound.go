package floorplan

import (
	"sync"

	"repro/internal/device"
)

// RunIndex summarizes a fabric's maximal contiguous runs of PRR-allowed
// columns (no IOB or CLK column inside) by their per-kind column counts. Any
// window FindWindow can ever return lies entirely inside one such run — a
// window must be contiguous and forbidden-free — so the index answers
// "could ANY window hold at least these column counts?" without scanning the
// fabric, independent of the row, the height, the avoid set and the hole
// layout. That makes it a sound necessary condition (an admissible bound)
// for branch-and-bound pruning: if CanHold says no, FindWindow can never say
// yes, on the empty fabric or any constrained one.
type RunIndex struct {
	runs []runCount
}

// runCount is one maximal allowed run's per-kind column census.
type runCount struct {
	clb, dsp, bram int
}

// NewRunIndex records every maximal run of PRR-allowed columns, reusing the
// run census the fabric's WindowIndex already computed.
func NewRunIndex(f *device.Fabric) *RunIndex {
	runs := f.WindowIndex().Runs()
	ri := &RunIndex{runs: make([]runCount, len(runs))}
	for i, c := range runs {
		ri.runs[i] = runCount{
			clb:  c.Of(device.KindCLB),
			dsp:  c.Of(device.KindDSP),
			bram: c.Of(device.KindBRAM),
		}
	}
	return ri
}

// runIndexes caches one RunIndex per fabric, keyed by identity like the
// device package's window-index cache.
var runIndexes sync.Map // *device.Fabric -> *RunIndex

// RunIndexFor returns the fabric's cached RunIndex, building it on first
// use. Explorations over the same device share one index instead of
// rescanning the column sequence per run.
func RunIndexFor(f *device.Fabric) *RunIndex {
	if v, ok := runIndexes.Load(f); ok {
		return v.(*RunIndex)
	}
	v, _ := runIndexes.LoadOrStore(f, NewRunIndex(f))
	return v.(*RunIndex)
}

// CanHold reports whether some allowed run contains at least need.CLB CLB
// columns, need.DSP DSP columns and need.BRAM BRAM columns simultaneously.
// False means no window with those (or larger) per-kind counts exists
// anywhere on the fabric, for any height and any avoid set.
func (ri *RunIndex) CanHold(need Need) bool {
	for _, r := range ri.runs {
		if r.clb >= need.CLB && r.dsp >= need.DSP && r.bram >= need.BRAM {
			return true
		}
	}
	return false
}

// Runs returns the number of maximal allowed runs, for diagnostics.
func (ri *RunIndex) Runs() int { return len(ri.runs) }
