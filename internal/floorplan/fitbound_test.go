package floorplan

import (
	"testing"

	"repro/internal/device"
)

func fabricFor(t *testing.T, layout string, rows int) *device.Fabric {
	t.Helper()
	dev, err := device.New(device.Spec{Name: "T", Family: device.Virtex5, Rows: rows, Layout: layout})
	if err != nil {
		t.Fatal(err)
	}
	return &dev.Fabric
}

func TestRunIndexCounts(t *testing.T) {
	// Three allowed runs: [C C D C], [B C C], [C]; IOB and CLK break runs.
	f := fabricFor(t, "I C*2 D C I B C*2 K C I", 2)
	ri := NewRunIndex(f)
	if ri.Runs() != 3 {
		t.Fatalf("Runs() = %d, want 3", ri.Runs())
	}

	cases := []struct {
		need Need
		want bool
	}{
		{Need{}, true},
		{Need{CLB: 3, DSP: 1}, true},   // first run
		{Need{CLB: 2, BRAM: 1}, true},  // second run
		{Need{CLB: 4}, false},          // no run has 4 CLB columns
		{Need{DSP: 1, BRAM: 1}, false}, // DSP and BRAM never share a run
		{Need{DSP: 2}, false},
		{Need{CLB: 1, DSP: 1, BRAM: 1}, false},
	}
	for _, c := range cases {
		if got := ri.CanHold(c.need); got != c.want {
			t.Errorf("CanHold(%+v) = %v, want %v", c.need, got, c.want)
		}
	}
}

// TestRunIndexNecessaryForFindWindow is the soundness property the
// branch-and-bound engine relies on: whenever FindWindow succeeds, the
// window's per-kind composition must be CanHold-able. (The converse need not
// hold — CanHold ignores ordering — which is fine for an admissible bound.)
func TestRunIndexNecessaryForFindWindow(t *testing.T) {
	f := fabricFor(t, "I C*3 D C*2 I C*2 B C I", 3)
	ri := NewRunIndex(f)
	needs := []Need{
		{CLB: 1}, {CLB: 3}, {CLB: 5, DSP: 1}, {CLB: 2, BRAM: 1},
		{CLB: 4, BRAM: 1}, {DSP: 1, BRAM: 1}, {CLB: 6},
	}
	for h := 1; h <= 3; h++ {
		for _, need := range needs {
			if w, ok := FindWindow(f, h, need); ok && !ri.CanHold(need) {
				t.Errorf("FindWindow(h=%d) placed %+v at %+v but CanHold = false", h, need, w)
			}
		}
	}
	// And the structural cases CanHold rejects must indeed have no window at
	// any height.
	for _, need := range []Need{{DSP: 1, BRAM: 1}, {CLB: 6}} {
		if ri.CanHold(need) {
			t.Fatalf("CanHold(%+v) unexpectedly true", need)
		}
		for h := 1; h <= 3; h++ {
			if w, ok := FindWindow(f, h, need); ok {
				t.Errorf("FindWindow(h=%d, %+v) found %+v despite CanHold = false", h, need, w)
			}
		}
	}
}
