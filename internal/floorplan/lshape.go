package floorplan

import "repro/internal/device"

// LRegion is a non-rectangular PRR made of two vertically stacked rectangles
// sharing their left edge: the base spans H1 rows of W1 columns, the
// extension the next H2 rows of the leftmost W2 <= W1 columns. The paper's
// §IV notes such L (or T) shapes can raise resource utilization at the cost
// of harder routing.
type LRegion struct {
	Base Region
	Ext  Region
}

// Tiles returns the total tile count of the L region.
func (l LRegion) Tiles() int { return l.Base.H*l.Base.W + l.Ext.H*l.Ext.W }

// FindLShape searches for an L-shaped region whose combined column-row
// composition covers the per-kind tile requirement exactly where a
// rectangle would overshoot. tileNeed counts column-rows (a column counted
// once per row it spans). The search tries every base/extension split of the
// requested total rows, preferring the smallest tile count.
func FindLShape(f *device.Fabric, rows int, tileNeed Need, avoid ...Region) (LRegion, bool) {
	best := LRegion{}
	bestTiles := -1
	for h1 := 1; h1 < rows; h1++ {
		h2 := rows - h1
		// The base must carry ceil(tileNeed/rows) columns scaled to h1 rows;
		// enumerate plausible base widths per kind.
		for wCLB1 := 0; wCLB1*h1 <= tileNeed.CLB+rows; wCLB1++ {
			needCLB2 := tileNeed.CLB - wCLB1*h1
			if needCLB2 < 0 || (h2 > 0 && needCLB2%h2 != 0) {
				continue
			}
			wCLB2 := 0
			if h2 > 0 {
				wCLB2 = needCLB2 / h2
			}
			if wCLB2 > wCLB1 {
				continue
			}
			// DSP and BRAM tiles are covered entirely by the base rectangle
			// (the extension is pure CLB), matching how designers draw L
			// shapes around fixed hard-block columns.
			base := Need{CLB: wCLB1, DSP: ceilDiv(tileNeed.DSP, h1), BRAM: ceilDiv(tileNeed.BRAM, h1)}
			ext := Need{CLB: wCLB2}
			if base.Width() == 0 || base.Width() < ext.Width() {
				continue
			}
			bReg, ok := FindWindow(f, h1, base, avoid...)
			if !ok {
				continue
			}
			// The extension must sit directly above the base's left columns.
			if ext.Width() > 0 {
				eReg := Region{Row: bReg.Row + h1, Col: bReg.Col, H: h2, W: ext.Width()}
				if eReg.Row+eReg.H-1 > f.Rows {
					continue
				}
				comp := f.CompositionOf(eReg.Col, eReg.W)
				if comp != ext.Composition() || comp.HasForbidden() {
					continue
				}
				if _, holed := f.HoleIn(eReg.Row, eReg.Col, eReg.H, eReg.W); holed {
					continue
				}
				if overlapAny(eReg, avoid) != nil {
					continue
				}
				cand := LRegion{Base: bReg, Ext: eReg}
				if bestTiles < 0 || cand.Tiles() < bestTiles {
					best, bestTiles = cand, cand.Tiles()
				}
			} else {
				cand := LRegion{Base: bReg}
				if bestTiles < 0 || cand.Tiles() < bestTiles {
					best, bestTiles = cand, cand.Tiles()
				}
			}
		}
	}
	return best, bestTiles >= 0
}

func ceilDiv(a, b int) int {
	if b == 0 {
		return 0
	}
	return (a + b - 1) / b
}
