package floorplan

import "fmt"

// Request names a PRR to place: its row count and column need (already
// derived from its PRMs by the cost model).
type Request struct {
	Name string
	H    int
	Need Need
}

// Placement is one placed PRR of a multi-PRR plan.
type Placement struct {
	Request
	Region Region
}

// Plan is a set of disjoint PRRs on one device.
type Plan struct {
	Placements []Placement
}

// Regions returns the placed regions, for overlap avoidance.
func (p *Plan) Regions() []Region {
	rs := make([]Region, len(p.Placements))
	for i := range p.Placements {
		rs[i] = p.Placements[i].Region
	}
	return rs
}

// PlaceAll places every requested PRR on the fabric without overlap, using
// the paper's search for each region in turn (largest width first, so the
// hardest-to-place regions claim fabric before fragmentation sets in). It
// fails if any region cannot be placed; hardware multitasking systems built
// on this call it during static floorplanning.
func (p *Placer) PlaceAll(reqs []Request) (*Plan, error) {
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	// Stable selection sort by descending area: deterministic and tiny n.
	for i := 0; i < len(order); i++ {
		best := i
		for j := i + 1; j < len(order); j++ {
			ai := reqs[order[best]].H * reqs[order[best]].Need.Width()
			aj := reqs[order[j]].H * reqs[order[j]].Need.Width()
			if aj > ai {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}

	plan := &Plan{}
	placed := append([]Region(nil), p.Reserved...)
	for _, idx := range order {
		req := reqs[idx]
		reg, ok := FindWindow(p.Fabric, req.H, req.Need, placed...)
		if !ok {
			return nil, fmt.Errorf("floorplan: no feasible region for PRR %q needing %dx%v after placing %d region(s)",
				req.Name, req.H, req.Need, len(plan.Placements))
		}
		placed = append(placed, reg)
		plan.Placements = append(plan.Placements, Placement{Request: req, Region: reg})
	}
	// Restore request order in the result.
	byName := make(map[string]Placement, len(plan.Placements))
	for _, pl := range plan.Placements {
		byName[pl.Name] = pl
	}
	ordered := make([]Placement, 0, len(reqs))
	for _, r := range reqs {
		ordered = append(ordered, byName[r.Name])
	}
	plan.Placements = ordered
	return plan, nil
}
