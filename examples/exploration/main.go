// Exploration: the paper's productivity argument in action. A designer must
// decide how to group six hardware tasks onto PRRs of a Virtex-6 LX240T.
// Exhaustively implementing every grouping through the vendor flow would
// take days (Table VIII: ~4-6 minutes per PRM per design point); the cost
// models price all of them in milliseconds and hand back a Pareto front.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/dse"
	"repro/internal/icap"
	"repro/internal/rtl"
	"repro/internal/synth"
)

func main() {
	dev, err := device.Lookup("XC6VLX240T")
	if err != nil {
		log.Fatal(err)
	}

	// Six tasks: the paper's three PRMs plus three extra cores, with
	// requirements taken from our synthesis simulator.
	var prms []dse.PRM
	for _, name := range []string{"FIR", "MIPS", "SDRAM", "UART", "CRC32", "FFT"} {
		m, err := rtl.Generate(name)
		if err != nil {
			log.Fatal(err)
		}
		rep := synth.Synthesize(m, dev)
		prms = append(prms, dse.PRM{Name: name, Req: core.FromReport(rep)})
		fmt.Printf("%-6s %v\n", name, rep)
	}

	e := &dse.Explorer{Device: dev, Estimator: icap.SizeModel{Port: icap.ICAP32, Media: icap.MediaDDRSDRAM}}
	start := time.Now()
	points := e.ExploreAll(prms)
	modelTime := time.Since(start)

	feasible := 0
	for _, p := range points {
		if p.Feasible {
			feasible++
		}
	}
	fmt.Printf("\nexplored %d partitionings (Bell(6) = 203), %d feasible, in %v\n",
		len(points), feasible, modelTime.Round(time.Millisecond))

	front := dse.Pareto(points)
	fmt.Println("\nPareto front (PRR area / worst-case reconfiguration / fragmentation):")
	for _, p := range front {
		fmt.Printf("  %-44s %4d tiles  %9v  min RU %.0f%%\n",
			dse.Describe(prms, p), p.TotalTiles, p.WorstReconfig.Round(time.Microsecond), p.MinRU)
	}

	var flowTime time.Duration
	for range points {
		for _, p := range prms {
			flowTime += dse.ISE124.FullFlow(p.Req.LUTFFPairs*2, synth.Report{LUTFFPairs: p.Req.LUTFFPairs})
		}
	}
	fmt.Printf("\nthe vendor flow would have needed ~%v for the same sweep: %.0fx productivity\n",
		flowTime.Round(time.Hour), float64(flowTime)/float64(modelTime))
}
