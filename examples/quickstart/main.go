// Quickstart: size a PRR and its partial bitstream for one PRM without
// running the PR design flow — the paper's headline use case.
//
// It synthesizes the built-in MIPS core for the Virtex-5 XC5VLX110T, runs
// the PRR size/organization model (Eqs. (1)-(17) with the Fig. 1 search),
// runs the bitstream size model (Eqs. (18)-(23)), and then validates both
// against the full simulated flow.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Synthesize (or load an XST report with repro.ParseXSTReport).
	rep, err := repro.SynthesizeCore("MIPS", "XC5VLX110T")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("synthesis report:", rep)

	// 2. PRR size/organization cost model.
	res, err := repro.EstimatePRR("XC5VLX110T", repro.FromReport(rep))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PRR: H=%d rows x W=%d columns (%d CLB + %d DSP + %d BRAM) = %d tiles\n",
		res.Org.H, res.Org.W(), res.Org.WCLB, res.Org.WDSP, res.Org.WBRAM, res.Org.Size())
	fmt.Printf("placed at %v\n", res.Org.Region)
	fmt.Printf("utilization: CLB %.1f%%, FF %.1f%%, LUT %.1f%%, DSP %.1f%%, BRAM %.1f%%\n",
		res.RU.CLB, res.RU.FF, res.RU.LUT, res.RU.DSP, res.RU.BRAM)

	// 3. Partial bitstream size cost model.
	bytes, err := repro.EstimateBitstreamBytes("XC5VLX110T", res.Org)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partial bitstream: %d bytes (model)\n", bytes)

	// 4. Validate against the simulated vendor flow: place and route inside
	// the region, generate the real packet stream, compare sizes.
	flow, err := repro.RunFlow("MIPS", "XC5VLX110T")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flow check: generated %d bytes, model %d — exact: %v; PAR saved %.1f%% pairs\n",
		len(flow.Bitstream), flow.ModelSizeBytes, flow.SizeExact(), flow.PairSavings())
}
