// Portability: the paper claims the cost models port across Xilinx families
// by swapping the Table II/IV constants. This example runs the same PRM
// requirement through every catalog device — Virtex-4, -5, -6, Series-7
// (including Zynq) and the 16-bit-word Spartan-6 — and validates each
// prediction byte-for-byte against a generated partial bitstream.
package main

import (
	"fmt"
	"log"

	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/device"
)

func main() {
	req := core.Requirements{LUTFFPairs: 600, LUTs: 400, FFs: 300, DSPs: 8}
	fmt.Printf("PRM requirement: %v\n\n", req)
	fmt.Printf("%-12s %-10s %-8s %-12s %-12s %s\n",
		"device", "family", "PRR", "model (B)", "generated", "exact")

	for _, dev := range device.All() {
		res, err := core.NewPRRModel(dev).Estimate(req)
		if err != nil {
			fmt.Printf("%-12s %-10s infeasible: %v\n", dev.Name, dev.Params.Family, err)
			continue
		}
		model := core.NewBitstreamModel(dev.Params).SizeBytes(res.Org)
		r := res.Org.Region
		data, err := bitstream.Generate(dev, bitstream.PRR{Row: r.Row, Col: r.Col, H: r.H, W: r.W}, 1)
		if err != nil {
			log.Fatalf("%s: %v", dev.Name, err)
		}
		fmt.Printf("%-12s %-10s %dx%-6d %-12d %-12d %v\n",
			dev.Name, dev.Params.Family, res.Org.H, res.Org.W(), model, len(data), model == len(data))
	}

	fmt.Println("\nThe same Eqs. (1)-(23) produced every row; only the family constants changed.")
}
