// Contextswitch: preemptive hardware multitasking with on-chip context
// save/restore — the mechanism of the authors' companion FCCM'13 work that
// this paper's cost models feed. Long low-priority FIR jobs share one PRR
// with urgent SDRAM transactions; with preemption, an urgent arrival
// captures the FIR's flip-flop state through the ICAP (GCAPTURE + frame
// readback), loads the SDRAM controller, and later resumes the FIR from a
// GRESTORE bitstream. The cost of each step comes from the paper's bitstream
// size model plus the generator's save/restore framing.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/icap"
	"repro/internal/multitask"
)

func main() {
	dev, err := device.Lookup("XC6VLX75T")
	if err != nil {
		log.Fatal(err)
	}
	firRow, _ := core.PaperTableVRow("FIR", dev.Name)
	sdramRow, _ := core.PaperTableVRow("SDRAM", dev.Name)
	specs := []multitask.PRMSpec{
		{Name: "FIR", Req: firRow.Req, Exec: 5 * time.Millisecond},
		{Name: "SDRAM", Req: sdramRow.Req, Exec: 200 * time.Microsecond},
	}
	model := icap.ContextSwitchModel{
		Transfer:        icap.SizeModel{Port: icap.ICAP32, Media: icap.MediaDDRSDRAM},
		CaptureOverhead: 2 * time.Microsecond,
	}
	sys, err := multitask.BuildPreemptiveSystem(dev, specs, 1, model)
	if err != nil {
		log.Fatal(err)
	}
	for name, prm := range sys.PRMs {
		fmt.Printf("%-6s load %6d B (%v), save %6d B (%v), restore %6d B (%v)\n",
			name,
			prm.LoadBytes, model.Transfer.Estimate(prm.LoadBytes).Round(time.Microsecond),
			prm.SaveBytes, model.SaveTime(prm.SaveBytes).Round(time.Microsecond),
			prm.RestoreBytes, model.RestoreTime(prm.RestoreBytes).Round(time.Microsecond))
	}

	var jobs []multitask.PJob
	for i := 0; i < 10; i++ {
		base := time.Duration(i) * 5 * time.Millisecond
		jobs = append(jobs,
			multitask.PJob{PRM: "FIR", Arrival: base},
			multitask.PJob{PRM: "SDRAM", Arrival: base + time.Millisecond, Priority: 9})
	}

	pre, err := sys.Run(jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npreemptive:     %d jobs, %d preemptions, urgent mean response %v\n",
		pre.Jobs, pre.Preemptions, pre.MeanHighPriorityResponse().Round(time.Microsecond))

	flat := make([]multitask.PJob, len(jobs))
	copy(flat, jobs)
	for i := range flat {
		flat[i].Priority = 0
	}
	run, err := sys.Run(flat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("non-preemptive: %d jobs, %d preemptions, overall mean response %v\n",
		run.Jobs, run.Preemptions, run.MeanResponse().Round(time.Microsecond))
	fmt.Printf("\npreemption buys the urgent task a %.0fx faster response, paying %v per context switch\n",
		float64(run.MeanResponse())/float64(pre.MeanHighPriorityResponse()),
		(model.SaveTime(sys.PRMs["FIR"].SaveBytes) +
			model.RestoreTime(sys.PRMs["FIR"].RestoreBytes)).Round(time.Microsecond))
}
