// Contextswitch: preemptive hardware multitasking with on-chip context
// save/restore — the mechanism of the authors' companion FCCM'13 work that
// this paper's cost models feed. Long low-priority FIR jobs share one PRR
// with urgent SDRAM transactions; with preemption, an urgent arrival
// captures the FIR's flip-flop state through the ICAP (GCAPTURE + frame
// readback), loads the SDRAM controller, and later resumes the FIR from a
// GRESTORE bitstream. The cost of each step comes from the paper's bitstream
// size model plus the generator's save/restore framing, priced through the
// sim package's discrete-event engine.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/icap"
	"repro/internal/sim"
)

func main() {
	dev, err := device.Lookup("XC6VLX75T")
	if err != nil {
		log.Fatal(err)
	}
	firRow, _ := core.PaperTableVRow("FIR", dev.Name)
	sdramRow, _ := core.PaperTableVRow("SDRAM", dev.Name)
	specs := []sim.Spec{
		{Name: "FIR", Req: firRow.Req},
		{Name: "SDRAM", Req: sdramRow.Req},
	}
	est := icap.SizeModel{Port: icap.ICAP32, Media: icap.MediaDDRSDRAM}
	plat, err := sim.BuildShared(dev, specs, 1)
	if err != nil {
		log.Fatal(err)
	}
	prr := plat.PRRs[0]
	fmt.Printf("shared PRR: load %6d B (%v), save %6d B (%v), restore %6d B (%v)\n",
		prr.LoadBytes, est.Estimate(prr.LoadBytes).Round(time.Microsecond),
		prr.SaveBytes, est.Estimate(prr.SaveBytes).Round(time.Microsecond),
		prr.RestoreBytes, est.Estimate(prr.RestoreBytes).Round(time.Microsecond))

	// Long FIR jobs with an urgent SDRAM transaction landing mid-burst.
	var jobs []sim.Job
	for i := 0; i < 10; i++ {
		base := time.Duration(i) * 5 * time.Millisecond
		jobs = append(jobs,
			sim.Job{ID: 2 * i, PRM: 0, Arrival: base, Exec: 5 * time.Millisecond},
			sim.Job{ID: 2*i + 1, PRM: 1, Arrival: base + time.Millisecond,
				Exec: 200 * time.Microsecond, Priority: 9})
	}

	run := func(pol sim.Policy, js []sim.Job) sim.Result {
		res, err := sim.Run(context.Background(),
			sim.Config{Platform: plat, Policy: pol, Estimator: est}, js, nil)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	pre := run(&sim.PreemptPriority{}, jobs)
	fmt.Printf("\npreemptive:     %d jobs, %d preemptions, mean response %v\n",
		pre.Completed, pre.Preemptions,
		time.Duration(pre.MeanResponseNS).Round(time.Microsecond))

	flat := make([]sim.Job, len(jobs))
	copy(flat, jobs)
	for i := range flat {
		flat[i].Priority = 0
	}
	fcfs := run(&sim.FCFSBestFit{}, flat)
	fmt.Printf("non-preemptive: %d jobs, %d preemptions, mean response %v\n",
		fcfs.Completed, fcfs.Preemptions,
		time.Duration(fcfs.MeanResponseNS).Round(time.Microsecond))

	fmt.Printf("\neach context switch pays %v (capture + save + restore) on top of the preemptor's load\n",
		(sim.DefaultCaptureOverhead + est.Estimate(prr.SaveBytes) +
			est.Estimate(prr.RestoreBytes)).Round(time.Microsecond))
}
