// Multitasking: the paper's motivating scenario (§I). Three hardware tasks
// — the FIR filter, the MIPS core and the SDRAM controller — time-multiplex
// PRRs on a Virtex-5 LX110T. The example sizes the PRRs with the cost
// models, runs a job stream through three system designs (dedicated PRRs,
// one shared PRR, full reconfiguration), and then reproduces the oversizing
// pathology: growing the shared PRR until the PR system loses to full
// reconfiguration.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/icap"
	"repro/internal/multitask"
	"repro/internal/rtl"
)

func main() {
	dev, err := device.Lookup("XC5VLX110T")
	if err != nil {
		log.Fatal(err)
	}
	var specs []multitask.PRMSpec
	for _, prm := range rtl.PaperPRMs() {
		row, _ := core.PaperTableVRow(prm, dev.Name)
		specs = append(specs, multitask.PRMSpec{Name: prm, Req: row.Req, Exec: 500 * time.Microsecond})
	}
	est := icap.SizeModel{Port: icap.ICAP32, Media: icap.MediaDDRSDRAM}
	jobs := multitask.RoundRobinJobs(rtl.PaperPRMs(), 300, 100*time.Microsecond)

	dedicated, err := multitask.BuildPRSystem(dev, specs, 0, est, multitask.FirstFree{})
	if err != nil {
		log.Fatal(err)
	}
	dRes, err := dedicated.Run(jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dedicated PRRs:     ", dRes)

	shared, err := multitask.BuildPRSystem(dev, specs, 1, est, multitask.ReuseAffinity{})
	if err != nil {
		log.Fatal(err)
	}
	sRes, err := shared.Run(jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("one shared PRR:     ", sRes)

	full := multitask.BuildFullReconfigSystem(dev, specs, est)
	fRes, err := full.Run(jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("full reconfiguration:", fRes)

	fmt.Printf("\nPR (dedicated) vs full reconfiguration: %.1fx makespan improvement\n\n",
		fRes.Makespan.Seconds()/dRes.Makespan.Seconds())

	// The §I pathology: oversized PRRs negate the PR benefit.
	points, err := multitask.OversizeSweep(dev, specs, []int{1, 2, 4, 8, 16, 32, 64}, est,
		multitask.RoundRobinJobs(rtl.PaperPRMs(), 60, 10*time.Microsecond))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("oversized shared PRR sweep (round-robin task switching):")
	for _, p := range points {
		verdict := "PR wins"
		if !p.PRWins() {
			verdict = "full reconfiguration wins"
		}
		fmt.Printf("  %2dx columns: %8d-byte bitstream, PR %7.0f jobs/s vs full %7.0f jobs/s — %s\n",
			p.Factor, p.BitstreamBytes, p.PRThroughput, p.FullThroughput, verdict)
	}
	if c := multitask.Crossover(points); c != 0 {
		fmt.Printf("crossover at %dx: beyond this the PR design is worse than not using PR at all\n", c)
	}
}
