package repro

// One benchmark per table and figure of the paper's evaluation, plus the
// ablations of DESIGN.md §5. Each bench regenerates its experiment from
// scratch, so `go test -bench=.` is the reproduction harness; the printed
// tables come from `go run ./cmd/paper`.

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/par"
	"repro/internal/rtl"
	"repro/internal/synth"
)

// BenchmarkTable2FamilyConstants regenerates Table II (family constants).
func BenchmarkTable2FamilyConstants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table2(); len(tbl.Rows) != 5 {
			b.Fatalf("Table II rows = %d", len(tbl.Rows))
		}
	}
}

// BenchmarkTable4BitstreamConstants regenerates Table IV.
func BenchmarkTable4BitstreamConstants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := experiments.Table4(); len(tbl.Rows) != 9 {
			b.Fatalf("Table IV rows = %d", len(tbl.Rows))
		}
	}
}

// BenchmarkTable5PRRModel regenerates Table V: the PRR size/organization
// model over all six PRM/device pairs. This is the paper's headline
// "seconds instead of hours" path, so its absolute time matters.
func BenchmarkTable5PRRModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6PostPAR regenerates Table VI: full simulated implementation
// (synthesis, optimization, placement) of all six PRM/device pairs.
func BenchmarkTable6PostPAR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable7BitstreamSizes regenerates Table VII: model prediction plus
// packet-level generation for every PRM/device pair, byte-compared.
func BenchmarkTable7BitstreamSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table7(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable8FlowTimes regenerates Table VIII: measured simulated-flow
// and cost-model times against the calibrated vendor-tool model.
func BenchmarkTable8FlowTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table8(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1SearchFlow regenerates Fig. 1's narrated search (FIR on
// the LX110T iterating H = 1..5).
func BenchmarkFigure1SearchFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2BitstreamStructure regenerates Fig. 2's bitstream
// structure decomposition for a two-row CLB+DSP+BRAM PRR.
func BenchmarkFigure2BitstreamStructure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablations -----------------------------------------------------------------

// BenchmarkAblationHSweep (A1): bitstream size and fragmentation vs H.
func BenchmarkAblationHSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationHSweep(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSharedPRR (A2): dedicated vs shared PRRs.
func BenchmarkAblationSharedPRR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSharedPRR(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationShapes (A3): rectangle vs L-shape tile counts.
func BenchmarkAblationShapes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationShapes(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPortability (A4): model-vs-generator validation across
// all five device families.
func BenchmarkAblationPortability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPortability(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOversizedPRR (A5): the oversize sweep with its PR-loses
// crossover.
func BenchmarkAblationOversizedPRR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationOversize(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationReconfigModels (A6): the related-work estimators on the
// paper PRMs' bitstreams.
func BenchmarkAblationReconfigModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationReconfigModels(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDSE (A7): exhaustive partition exploration on the LX75T.
func BenchmarkAblationDSE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationDSE(); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks ------------------------------------------------------------

// BenchmarkPRRModelEstimate times one cost-model evaluation — the quantity
// the paper's productivity claim rests on (microseconds vs the flow's
// minutes).
func BenchmarkPRRModelEstimate(b *testing.B) {
	dev, err := device.Lookup("XC5VLX110T")
	if err != nil {
		b.Fatal(err)
	}
	row, _ := core.PaperTableVRow("MIPS", "XC5VLX110T")
	m := core.NewPRRModel(dev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Estimate(row.Req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBitstreamModel times one Eq. (18)-(23) evaluation.
func BenchmarkBitstreamModel(b *testing.B) {
	dev, err := device.Lookup("XC5VLX110T")
	if err != nil {
		b.Fatal(err)
	}
	m := core.NewBitstreamModel(dev.Params)
	org := core.Organization{H: 1, WCLB: 17, WDSP: 1, WBRAM: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.SizeBytes(org) <= 0 {
			b.Fatal("bad size")
		}
	}
}

// BenchmarkBitstreamGenerate times packet-level generation of the MIPS
// partial bitstream (the substrate the model is validated against).
func BenchmarkBitstreamGenerate(b *testing.B) {
	dev, err := device.Lookup("XC5VLX110T")
	if err != nil {
		b.Fatal(err)
	}
	row, _ := core.PaperTableVRow("MIPS", "XC5VLX110T")
	res, err := core.NewPRRModel(dev).Estimate(row.Req)
	if err != nil {
		b.Fatal(err)
	}
	r := res.Org.Region
	prr := bitstream.PRR{Row: r.Row, Col: r.Col, H: r.H, W: r.W}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := bitstream.Generate(dev, prr, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data)))
	}
}

// BenchmarkSynthesizeMIPS times the synthesis simulator on the largest PRM.
func BenchmarkSynthesizeMIPS(b *testing.B) {
	dev, err := device.Lookup("XC5VLX110T")
	if err != nil {
		b.Fatal(err)
	}
	m, err := rtl.Generate("MIPS")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := synth.Synthesize(m, dev); r.LUTFFPairs == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkPlaceAndRouteMIPS times the implementation simulator on the
// largest PRM (the "hours to days" step the models bypass).
func BenchmarkPlaceAndRouteMIPS(b *testing.B) {
	dev, err := device.Lookup("XC5VLX110T")
	if err != nil {
		b.Fatal(err)
	}
	m, err := rtl.Generate("MIPS")
	if err != nil {
		b.Fatal(err)
	}
	sr := synth.Synthesize(m, dev)
	est, err := core.NewPRRModel(dev).Estimate(core.FromReport(sr))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := par.PlaceAndRoute(m, dev, est.Org.Region); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRTLGenerate times the RTL generators themselves.
func BenchmarkRTLGenerate(b *testing.B) {
	for _, name := range rtl.PaperPRMs() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rtl.Generate(name); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Extension benchmarks ---------------------------------------------------------

// BenchmarkContextSwitch (A8) times one preemptive save+load+restore cycle's
// cost derivation from the models.
func BenchmarkContextSwitch(b *testing.B) {
	dev, err := device.Lookup("XC6VLX75T")
	if err != nil {
		b.Fatal(err)
	}
	row, _ := core.PaperTableVRow("FIR", "XC6VLX75T")
	res, err := core.NewPRRModel(dev).Estimate(row.Req)
	if err != nil {
		b.Fatal(err)
	}
	r := res.Org.Region
	prr := bitstream.PRR{Row: r.Row, Col: r.Col, H: r.H, W: r.W}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bitstream.SaveTransferBytes(dev, prr); err != nil {
			b.Fatal(err)
		}
		if _, err := bitstream.GenerateRestore(dev, prr, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRelocate (A9) times a FAR-rewrite relocation of the FIR bitstream.
func BenchmarkRelocate(b *testing.B) {
	dev, err := device.Lookup("XC6VLX75T")
	if err != nil {
		b.Fatal(err)
	}
	src := bitstream.PRR{Row: 1, Col: 3, H: 1, W: 4}
	dst := bitstream.PRR{Row: 2, Col: 3, H: 1, W: 4}
	words, err := bitstream.GenerateWords(dev, src, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bitstream.Relocate(dev, words, src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompress times RLE compression of a 30%-density bitstream.
func BenchmarkCompress(b *testing.B) {
	dev, err := device.Lookup("XC5VLX110T")
	if err != nil {
		b.Fatal(err)
	}
	words, err := bitstream.GenerateWordsOpts(dev,
		bitstream.PRR{Row: 1, Col: 18, H: 1, W: 20},
		bitstream.Options{Seed: 3, Density: 0.3})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * len(words)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(bitstream.Compress(words)) == 0 {
			b.Fatal("empty compression")
		}
	}
}

// BenchmarkTimingAnalysis times static timing of the optimized MIPS core.
func BenchmarkTimingAnalysis(b *testing.B) {
	m, err := rtl.Generate("MIPS")
	if err != nil {
		b.Fatal(err)
	}
	opt, _ := par.Optimize(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := par.AnalyzeTiming(opt, nil); err != nil {
			b.Fatal(err)
		}
	}
}
